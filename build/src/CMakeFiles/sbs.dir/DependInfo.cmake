
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  "ASM"
  )
# The set of files for implicit dependencies of each language:
set(CMAKE_DEPENDS_CHECK_ASM
  "/root/repo/src/sim/fiber_switch_x86_64.S" "/root/repo/build/src/CMakeFiles/sbs.dir/sim/fiber_switch_x86_64.S.o"
  )
set(CMAKE_ASM_COMPILER_ID "GNU")

# Preprocessor definitions for this target.
set(CMAKE_TARGET_DEFINITIONS_ASM
  "SBS_ASM_FIBERS=1"
  )

# The include file search paths:
set(CMAKE_ASM_TARGET_INCLUDE_PATH
  "/root/repo/src"
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/bench_cli.cpp" "src/CMakeFiles/sbs.dir/harness/bench_cli.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/harness/bench_cli.cpp.o.d"
  "/root/repo/src/harness/experiment.cpp" "src/CMakeFiles/sbs.dir/harness/experiment.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/harness/experiment.cpp.o.d"
  "/root/repo/src/kernels/kernel.cpp" "src/CMakeFiles/sbs.dir/kernels/kernel.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/kernels/kernel.cpp.o.d"
  "/root/repo/src/kernels/matmul.cpp" "src/CMakeFiles/sbs.dir/kernels/matmul.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/kernels/matmul.cpp.o.d"
  "/root/repo/src/kernels/quadtree.cpp" "src/CMakeFiles/sbs.dir/kernels/quadtree.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/kernels/quadtree.cpp.o.d"
  "/root/repo/src/kernels/quicksort.cpp" "src/CMakeFiles/sbs.dir/kernels/quicksort.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/kernels/quicksort.cpp.o.d"
  "/root/repo/src/kernels/rrg.cpp" "src/CMakeFiles/sbs.dir/kernels/rrg.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/kernels/rrg.cpp.o.d"
  "/root/repo/src/kernels/rrm.cpp" "src/CMakeFiles/sbs.dir/kernels/rrm.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/kernels/rrm.cpp.o.d"
  "/root/repo/src/kernels/samplesort.cpp" "src/CMakeFiles/sbs.dir/kernels/samplesort.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/kernels/samplesort.cpp.o.d"
  "/root/repo/src/machine/config.cpp" "src/CMakeFiles/sbs.dir/machine/config.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/machine/config.cpp.o.d"
  "/root/repo/src/machine/topology.cpp" "src/CMakeFiles/sbs.dir/machine/topology.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/machine/topology.cpp.o.d"
  "/root/repo/src/perf/counters.cpp" "src/CMakeFiles/sbs.dir/perf/counters.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/perf/counters.cpp.o.d"
  "/root/repo/src/runtime/mem.cpp" "src/CMakeFiles/sbs.dir/runtime/mem.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/runtime/mem.cpp.o.d"
  "/root/repo/src/runtime/run_stats.cpp" "src/CMakeFiles/sbs.dir/runtime/run_stats.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/runtime/run_stats.cpp.o.d"
  "/root/repo/src/runtime/thread_pool.cpp" "src/CMakeFiles/sbs.dir/runtime/thread_pool.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/runtime/thread_pool.cpp.o.d"
  "/root/repo/src/sched/cilk_ws.cpp" "src/CMakeFiles/sbs.dir/sched/cilk_ws.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/sched/cilk_ws.cpp.o.d"
  "/root/repo/src/sched/ops.cpp" "src/CMakeFiles/sbs.dir/sched/ops.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/sched/ops.cpp.o.d"
  "/root/repo/src/sched/pws.cpp" "src/CMakeFiles/sbs.dir/sched/pws.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/sched/pws.cpp.o.d"
  "/root/repo/src/sched/registry.cpp" "src/CMakeFiles/sbs.dir/sched/registry.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/sched/registry.cpp.o.d"
  "/root/repo/src/sched/sb.cpp" "src/CMakeFiles/sbs.dir/sched/sb.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/sched/sb.cpp.o.d"
  "/root/repo/src/sched/ws.cpp" "src/CMakeFiles/sbs.dir/sched/ws.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/sched/ws.cpp.o.d"
  "/root/repo/src/sim/cache.cpp" "src/CMakeFiles/sbs.dir/sim/cache.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/sim/cache.cpp.o.d"
  "/root/repo/src/sim/counters.cpp" "src/CMakeFiles/sbs.dir/sim/counters.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/sim/counters.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/sbs.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/fiber.cpp" "src/CMakeFiles/sbs.dir/sim/fiber.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/sim/fiber.cpp.o.d"
  "/root/repo/src/sim/memory_system.cpp" "src/CMakeFiles/sbs.dir/sim/memory_system.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/sim/memory_system.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/sbs.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/sbs.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/sbs.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
