# Empty compiler generated dependencies file for sbs.
# This may be replaced when dependencies are built.
