# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_cache "/root/repo/build/tests/test_cache")
set_tests_properties(test_cache PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_chase_lev "/root/repo/build/tests/test_chase_lev")
set_tests_properties(test_chase_lev PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_fiber "/root/repo/build/tests/test_fiber")
set_tests_properties(test_fiber PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_harness "/root/repo/build/tests/test_harness")
set_tests_properties(test_harness PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_kernels "/root/repo/build/tests/test_kernels")
set_tests_properties(test_kernels PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_machine "/root/repo/build/tests/test_machine")
set_tests_properties(test_machine PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_memory_system "/root/repo/build/tests/test_memory_system")
set_tests_properties(test_memory_system PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_perf "/root/repo/build/tests/test_perf")
set_tests_properties(test_perf PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_runtime "/root/repo/build/tests/test_runtime")
set_tests_properties(test_runtime PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_runtime_edge "/root/repo/build/tests/test_runtime_edge")
set_tests_properties(test_runtime_edge PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sb_properties "/root/repo/build/tests/test_sb_properties")
set_tests_properties(test_sb_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_schedulers "/root/repo/build/tests/test_schedulers")
set_tests_properties(test_schedulers PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim_engine "/root/repo/build/tests/test_sim_engine")
set_tests_properties(test_sim_engine PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_util "/root/repo/build/tests/test_util")
set_tests_properties(test_util PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
