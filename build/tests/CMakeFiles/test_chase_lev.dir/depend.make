# Empty dependencies file for test_chase_lev.
# This may be replaced when dependencies are built.
