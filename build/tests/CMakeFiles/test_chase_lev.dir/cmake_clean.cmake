file(REMOVE_RECURSE
  "CMakeFiles/test_chase_lev.dir/test_chase_lev.cpp.o"
  "CMakeFiles/test_chase_lev.dir/test_chase_lev.cpp.o.d"
  "test_chase_lev"
  "test_chase_lev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chase_lev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
