# Empty dependencies file for test_sb_properties.
# This may be replaced when dependencies are built.
