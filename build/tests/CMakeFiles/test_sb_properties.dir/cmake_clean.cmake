file(REMOVE_RECURSE
  "CMakeFiles/test_sb_properties.dir/test_sb_properties.cpp.o"
  "CMakeFiles/test_sb_properties.dir/test_sb_properties.cpp.o.d"
  "test_sb_properties"
  "test_sb_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sb_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
